(** Bounded stateless model checking of the weak machine.

    Where the stress campaigns sample schedules of {!Sim} at random —
    exposing weak behaviours but never proving their absence — this
    module enumerates them: every interleaving of thread steps {e and}
    every choice of store-buffer commit point of {!Memsys}, up to a
    bound on the number of reorderings (commits that overtake an older
    pending entry).  The semantics mirror the simulator's memory system
    exactly — partition-head commit eligibility, same-thread load
    forwarding, fence drains, capacity eviction, atomic pre-commit,
    barrier release drains — with the contention-delay dice replaced by
    explicit nondeterminism, so:

    - the reachable final states are a superset of what any seeded
      {!Sim} run can produce on the same chip (cross-validation:
      campaign-observed outcomes must appear here);
    - every explored schedule replays bit-identically through
      [Sim.run_schedule], which is how witnesses are validated.

    Exploration uses sleep-set dynamic partial-order reduction
    (enabled by default): commutations of independent transitions —
    disjoint-footprint memory effects of different threads — are pruned
    while preserving the full set of terminal states, typically
    shrinking litmus-sized state spaces by orders of magnitude (the
    [stats] record exposes the pruning so tests can assert it).

    Program restrictions are those of {!Sc_ref} (the SC baseline the
    verdict compares against): no loops, no shared memory, no random
    expressions; barriers are supported, barrier divergence is
    rejected. *)

type step =
  | Sstep of int  (** thread [tid] executes its next statement *)
  | Scommit of int * int
      (** thread [tid] commits its [n]-th pending entry (FIFO order) *)

type program = {
  threads : Kernel.t list;
  args : (string * int) list list;
  blocks : int array option;
      (** block membership per thread ({!Sc_ref.layouts}); [None] means
          one block per thread *)
  init : (int * int) list;  (** initial global memory *)
  watch_mem : int list;
  watch_regs : (int * string) list;
}

type witness = {
  state : Sc_ref.state;  (** final state, projected on the watch sets *)
  schedule : step list;  (** complete schedule from launch to quiescence *)
  reorders : int;  (** reorderings the schedule performs *)
}

type stats = {
  explored : int;  (** transitions executed *)
  sleep_pruned : int;  (** transitions skipped by the sleep sets *)
  bound_pruned : int;  (** branches cut by the reordering bound *)
  completed : int;  (** complete schedules reached *)
  roots : int;  (** root-level transitions (the sharding width) *)
}

type verdict =
  | Proved_sc
      (** every reachable final state is SC-reachable: no weak behaviour
          under the given reordering bound *)
  | Weak of witness list
      (** the non-SC states, each with a replayable witness schedule *)

type result = {
  verdict : verdict;
  reachable : witness list;  (** all final states, sorted, with witnesses *)
  sc_states : Sc_ref.state list;  (** the {!Sc_ref.run} baseline *)
  stats : stats;
}

val check :
  chip:Chip.t ->
  max_reorderings:int ->
  ?dpor:bool ->
  ?roots:int list ->
  ?words:int ->
  ?fuel:int ->
  program ->
  result
(** Explore every schedule of [program] on [chip] with at most
    [max_reorderings] reorderings.  [?dpor] (default [true]) toggles the
    sleep-set reduction — verdicts are identical either way, only
    [stats] differ.  [?roots] restricts the root-level transitions
    explored (shard [i] of [root_count] slices; unselected roots still
    enter the sleep sets, so per-root results merged in root order
    reproduce the serial result exactly).  [?words] (default 2048)
    bounds global addresses; [?fuel] (default 10M transitions) guards
    against state-space blowups with [Failure].

    The SC baseline {!Sc_ref.run} always includes schedules with zero
    reorderings, so [reachable] is a superset of [sc_states] and
    [Proved_sc] means the two sets are equal.

    @raise Invalid_argument on loops, shared memory, random
    expressions, out-of-bounds accesses or barrier divergence. *)

val root_count : chip:Chip.t -> ?words:int -> program -> int
(** Number of root-level transitions of the exploration: the width
    available to [?roots] sharding. *)

val pp_step : Format.formatter -> step -> unit
(** ["S<tid>"] for steps, ["C<tid>.<n>"] for commits. *)

val schedule_to_string : step list -> string
(** Space-separated {!pp_step} tokens. *)

val schedule_of_string : string -> step list
(** Inverse of {!schedule_to_string}.
    @raise Invalid_argument on malformed tokens. *)
