(** Abstract syntax of simulated GPU kernels.

    Kernels are written in a small imperative language with the CUDA
    features that matter for weak-memory testing: global and shared memory,
    read-modify-write atomics, block barriers, and block/device memory
    fences.  All data is word-sized ([int]).

    Every statement carries a {e site id}.  Site ids are assigned by
    {!label} in pre-order; they identify memory-access sites for empirical
    fence insertion (Alg. 1 of the paper) and fence sites for the
    fence-stripping pass that manufactures the [-nf] application
    variants. *)

type space =
  | Global  (** visible to the whole grid *)
  | Shared  (** per-block scratch memory *)

type special =
  | Tid   (** [threadIdx.x] *)
  | Bid   (** [blockIdx.x] *)
  | Bdim  (** [blockDim.x] *)
  | Gdim  (** [gridDim.x] *)

type binop =
  | Add | Sub | Mul | Div | Rem
  | Band | Bor | Bxor | Shl | Shr
  | Eq | Ne | Lt | Le | Gt | Ge
  | Min | Max

type unop = Neg | Lnot

type exp =
  | Int of int
  | Reg of string
  | Special of special
  | Param of string         (** kernel parameter, uniform across threads *)
  | Binop of binop * exp * exp
  | Unop of unop * exp
  | Rand of exp
      (** uniform pseudo-random value in [\[0, bound)]; the device's
          seeded stream (models curand) *)

(** Atomic read-modify-write operations, applied to a memory word; each
    returns the previous value. *)
type atomic =
  | Acas of exp * exp  (** [Acas (expected, desired)]: compare-and-swap *)
  | Aexch of exp
  | Aadd of exp
  | Amin of exp
  | Amax of exp

type fence_scope =
  | Cta     (** [__threadfence_block] *)
  | Device  (** [__threadfence] *)

type instr =
  | Assign of string * exp
  | Load of { dst : string; space : space; addr : exp }
  | Store of { space : space; addr : exp; value : exp }
  | Atomic of { dst : string option; space : space; addr : exp; op : atomic }
  | Fence of fence_scope
  | Barrier
  | If of exp * block * block
  | While of exp * block
  | Return  (** terminate this thread *)

and stmt = { sid : int; instr : instr }

and block = stmt list

type t = {
  name : string;
  params : string list;  (** formal parameters: scalars or array base addresses *)
  body : block;
}

val stmt : instr -> stmt
(** A statement with the unlabelled site id [-1]. *)

val label : t -> t
(** Assign site ids 0, 1, 2, ... to every statement in pre-order.  All
    analyses and transformations below expect a labelled kernel. *)

val max_sid : t -> int
(** Largest site id in a labelled kernel, [-1] if the body is empty. *)

val iter_stmts : (stmt -> unit) -> t -> unit
(** Pre-order traversal of all statements, including nested ones. *)

val global_access_sites : t -> int list
(** Site ids of loads, stores and atomics to {!Global} memory, in program
    (pre-order) order.  These are the candidate fence-insertion points. *)

val fence_sites : t -> int list
(** Site ids of [Fence] statements. *)

val strip_fences : t -> t
(** Remove every [Fence] statement; used to manufacture the [-nf]
    application variants.  The result keeps its remaining labels; re-apply
    {!label} before computing insertion sites. *)

val insert_fences_after : scope:fence_scope -> sites:(int -> bool) -> t -> t
(** [insert_fences_after ~scope ~sites k] places a fence of [scope]
    immediately after every statement whose site id satisfies [sites].
    Inserted fences carry the site id of the access they follow, so a
    fence set is identified with a set of access-site ids. *)

val count_stmts : t -> int
(** Total number of statements (all nesting levels). *)
