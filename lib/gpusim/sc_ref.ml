(* An independent interpreter: deliberately shares no execution code with
   Code/Sim so that it can serve as a cross-validation oracle. *)

type state = {
  memory : (int * int) list;
  registers : (int * string * int) list;
}

type tstate = {
  thread : int;
  mutable work : Kernel.stmt list;  (* continuation *)
  regs : (string, int) Hashtbl.t;
  args : (string * int) list;
  gdim : int;
}

let rec eval ts (mem : (int, int) Hashtbl.t) (e : Kernel.exp) =
  match e with
  | Kernel.Int n -> n
  | Kernel.Reg r -> ( match Hashtbl.find_opt ts.regs r with Some v -> v | None -> 0)
  | Kernel.Param p -> (
    match List.assoc_opt p ts.args with
    | Some v -> v
    | None -> invalid_arg ("Sc_ref: missing argument " ^ p))
  | Kernel.Special Kernel.Tid -> 0
  | Kernel.Special Kernel.Bid -> ts.thread
  | Kernel.Special Kernel.Bdim -> 1
  | Kernel.Special Kernel.Gdim -> ts.gdim
  | Kernel.Binop (op, a, b) ->
    let va = eval ts mem a and vb = eval ts mem b in
    let bool_ c = if c then 1 else 0 in
    (match op with
    | Kernel.Add -> va + vb
    | Kernel.Sub -> va - vb
    | Kernel.Mul -> va * vb
    | Kernel.Div -> if vb = 0 then 0 else va / vb
    | Kernel.Rem -> if vb = 0 then 0 else va mod vb
    | Kernel.Band -> va land vb
    | Kernel.Bor -> va lor vb
    | Kernel.Bxor -> va lxor vb
    | Kernel.Shl -> va lsl vb
    | Kernel.Shr -> va asr vb
    | Kernel.Eq -> bool_ (va = vb)
    | Kernel.Ne -> bool_ (va <> vb)
    | Kernel.Lt -> bool_ (va < vb)
    | Kernel.Le -> bool_ (va <= vb)
    | Kernel.Gt -> bool_ (va > vb)
    | Kernel.Ge -> bool_ (va >= vb)
    | Kernel.Min -> Int.min va vb
    | Kernel.Max -> Int.max va vb)
  | Kernel.Unop (Kernel.Neg, a) -> -eval ts mem a
  | Kernel.Unop (Kernel.Lnot, a) -> if eval ts mem a = 0 then 1 else 0
  | Kernel.Rand _ -> invalid_arg "Sc_ref: random expressions are not supported"

let mem_get mem a = match Hashtbl.find_opt mem a with Some v -> v | None -> 0

(* Execute one statement of a thread; returns false if the thread cannot
   step (already finished). *)
let step ts mem =
  match ts.work with
  | [] -> false
  | s :: rest ->
    (match s.Kernel.instr with
    | Kernel.Assign (r, e) ->
      Hashtbl.replace ts.regs r (eval ts mem e);
      ts.work <- rest
    | Kernel.Load { dst; space = Kernel.Global; addr } ->
      Hashtbl.replace ts.regs dst (mem_get mem (eval ts mem addr));
      ts.work <- rest
    | Kernel.Store { space = Kernel.Global; addr; value } ->
      Hashtbl.replace mem (eval ts mem addr) (eval ts mem value);
      ts.work <- rest
    | Kernel.Atomic { dst; space = Kernel.Global; addr; op } ->
      let a = eval ts mem addr in
      let old = mem_get mem a in
      let nv =
        match op with
        | Kernel.Acas (e, d) -> if old = eval ts mem e then eval ts mem d else old
        | Kernel.Aexch v -> eval ts mem v
        | Kernel.Aadd v -> old + eval ts mem v
        | Kernel.Amin v -> Int.min old (eval ts mem v)
        | Kernel.Amax v -> Int.max old (eval ts mem v)
      in
      Hashtbl.replace mem a nv;
      (match dst with Some d -> Hashtbl.replace ts.regs d old | None -> ());
      ts.work <- rest
    | Kernel.Load _ | Kernel.Store _ | Kernel.Atomic _ ->
      invalid_arg "Sc_ref: shared memory is not supported"
    | Kernel.Fence _ ->
      (* Under SC a fence is a no-op. *)
      ts.work <- rest
    | Kernel.If (c, t, e) ->
      ts.work <- (if eval ts mem c <> 0 then t @ rest else e @ rest)
    | Kernel.While _ -> invalid_arg "Sc_ref: loops are not supported"
    | Kernel.Barrier -> invalid_arg "Sc_ref: barriers are not supported"
    | Kernel.Return -> ts.work <- []);
    true

let snapshot_ts ts = (ts.thread, ts.work, Hashtbl.copy ts.regs)
let restore_ts ts (_, work, regs) =
  ts.work <- work;
  Hashtbl.reset ts.regs;
  Hashtbl.iter (Hashtbl.add ts.regs) regs

let run ~threads ~args ~init ~watch_mem ~watch_regs =
  if List.length threads <> List.length args then
    invalid_arg "Sc_ref.run: threads/args length mismatch";
  let n = List.length threads in
  let mem = Hashtbl.create 16 in
  List.iter (fun (a, v) -> Hashtbl.replace mem a v) init;
  let tstates =
    List.mapi
      (fun i (k : Kernel.t) ->
        { thread = i; work = k.Kernel.body; regs = Hashtbl.create 8;
          args = List.nth args i; gdim = n })
      threads
    |> Array.of_list
  in
  let results = Hashtbl.create 64 in
  let rec explore () =
    let progressed = ref false in
    for i = 0 to n - 1 do
      let ts = tstates.(i) in
      if ts.work <> [] then begin
        progressed := true;
        let saved_ts = snapshot_ts ts in
        let saved_mem = Hashtbl.copy mem in
        ignore (step ts mem);
        explore ();
        restore_ts ts saved_ts;
        Hashtbl.reset mem;
        Hashtbl.iter (Hashtbl.add mem) saved_mem
      end
    done;
    if not !progressed then begin
      let memory =
        List.sort compare (List.map (fun a -> (a, mem_get mem a)) watch_mem)
      in
      let registers =
        List.sort compare
          (List.map
             (fun (t, r) ->
               let v =
                 match Hashtbl.find_opt tstates.(t).regs r with
                 | Some v -> v
                 | None -> 0
               in
               (t, r, v))
             watch_regs)
      in
      Hashtbl.replace results { memory; registers } ()
    end
  in
  explore ();
  Hashtbl.fold (fun s () acc -> s :: acc) results []
  |> List.sort compare

let allows ~threads ~args ~init target =
  let watch_mem = List.map fst target.memory in
  let watch_regs = List.map (fun (t, r, _) -> (t, r)) target.registers in
  let reachable = run ~threads ~args ~init ~watch_mem ~watch_regs in
  List.exists
    (fun s ->
      List.sort compare s.memory = List.sort compare target.memory
      && List.sort compare s.registers = List.sort compare target.registers)
    reachable
