(* An independent interpreter: deliberately shares no execution code with
   Code/Sim so that it can serve as a cross-validation oracle. *)

type state = {
  memory : (int * int) list;
  registers : (int * string * int) list;
}

(* Launch geometry from a block-membership array: thread [i] belongs to
   block [blocks.(i)]; within a block, threads are numbered in order of
   appearance.  The default ([blocks.(i) = i]) gives every thread its own
   block, which reproduces the historical tid=0/bid=i/bdim=1/gdim=n
   single-thread-per-block view. *)
let layouts ?blocks n =
  let blocks =
    match blocks with
    | Some b ->
      if Array.length b <> n then
        invalid_arg "Sc_ref: blocks array length must match thread count";
      b
    | None -> Array.init n (fun i -> i)
  in
  (* Distinct block ids in order of first appearance become bids 0.. *)
  let order = ref [] in
  Array.iter
    (fun b -> if not (List.mem b !order) then order := b :: !order)
    blocks;
  let distinct = List.rev !order in
  let gdim = List.length distinct in
  let bid_of b =
    let rec go i = function
      | [] -> assert false
      | b' :: tl -> if b' = b then i else go (i + 1) tl
    in
    go 0 distinct
  in
  let size_of b =
    Array.fold_left (fun acc b' -> if b' = b then acc + 1 else acc) 0 blocks
  in
  let seen = Hashtbl.create 8 in
  Array.mapi
    (fun i b ->
      let tid = match Hashtbl.find_opt seen b with Some k -> k | None -> 0 in
      Hashtbl.replace seen b (tid + 1);
      ignore i;
      (tid, bid_of b, size_of b, gdim))
    blocks

type tstate = {
  thread : int;
  block : int;  (* canonical bid *)
  l_tid : int;
  l_bdim : int;
  l_gdim : int;
  mutable work : Kernel.stmt list;  (* continuation *)
  mutable waiting : bool;  (* parked at a block barrier *)
  regs : (string, int) Hashtbl.t;
  args : (string * int) list;
}

let rec eval ts (mem : (int, int) Hashtbl.t) (e : Kernel.exp) =
  match e with
  | Kernel.Int n -> n
  | Kernel.Reg r -> ( match Hashtbl.find_opt ts.regs r with Some v -> v | None -> 0)
  | Kernel.Param p -> (
    match List.assoc_opt p ts.args with
    | Some v -> v
    | None -> invalid_arg ("Sc_ref: missing argument " ^ p))
  | Kernel.Special Kernel.Tid -> ts.l_tid
  | Kernel.Special Kernel.Bid -> ts.block
  | Kernel.Special Kernel.Bdim -> ts.l_bdim
  | Kernel.Special Kernel.Gdim -> ts.l_gdim
  | Kernel.Binop (op, a, b) ->
    let va = eval ts mem a and vb = eval ts mem b in
    let bool_ c = if c then 1 else 0 in
    (match op with
    | Kernel.Add -> va + vb
    | Kernel.Sub -> va - vb
    | Kernel.Mul -> va * vb
    | Kernel.Div -> if vb = 0 then 0 else va / vb
    | Kernel.Rem -> if vb = 0 then 0 else va mod vb
    | Kernel.Band -> va land vb
    | Kernel.Bor -> va lor vb
    | Kernel.Bxor -> va lxor vb
    | Kernel.Shl -> va lsl vb
    | Kernel.Shr -> va asr vb
    | Kernel.Eq -> bool_ (va = vb)
    | Kernel.Ne -> bool_ (va <> vb)
    | Kernel.Lt -> bool_ (va < vb)
    | Kernel.Le -> bool_ (va <= vb)
    | Kernel.Gt -> bool_ (va > vb)
    | Kernel.Ge -> bool_ (va >= vb)
    | Kernel.Min -> Int.min va vb
    | Kernel.Max -> Int.max va vb)
  | Kernel.Unop (Kernel.Neg, a) -> -eval ts mem a
  | Kernel.Unop (Kernel.Lnot, a) -> if eval ts mem a = 0 then 1 else 0
  | Kernel.Rand _ -> invalid_arg "Sc_ref: random expressions are not supported"

let mem_get mem a = match Hashtbl.find_opt mem a with Some v -> v | None -> 0

(* A thread is finished when it has no continuation and is not parked at a
   barrier (a trailing barrier keeps the thread alive until release). *)
let finished ts = ts.work = [] && not ts.waiting

(* Release the barrier of [block] if every live member is waiting at it.
   CUDA leaves a barrier undefined unless every thread of the block
   executes it, so a release with exited members is rejected outright —
   the oracle refuses programs whose barrier behaviour is undefined. *)
let maybe_release tstates block =
  let members =
    Array.to_list tstates |> List.filter (fun ts -> ts.block = block)
  in
  let live = List.filter (fun ts -> not (finished ts)) members in
  let waiting = List.filter (fun ts -> ts.waiting) members in
  if live <> [] && List.length waiting = List.length live then begin
    if List.length live < List.length members then
      invalid_arg "Sc_ref: barrier divergence";
    List.iter (fun ts -> ts.waiting <- false) live
  end

(* Execute one statement of a thread; returns false if the thread cannot
   step (already finished). *)
let step tstates ts mem =
  match ts.work with
  | [] -> false
  | s :: rest ->
    (match s.Kernel.instr with
    | Kernel.Assign (r, e) ->
      Hashtbl.replace ts.regs r (eval ts mem e);
      ts.work <- rest
    | Kernel.Load { dst; space = Kernel.Global; addr } ->
      Hashtbl.replace ts.regs dst (mem_get mem (eval ts mem addr));
      ts.work <- rest
    | Kernel.Store { space = Kernel.Global; addr; value } ->
      Hashtbl.replace mem (eval ts mem addr) (eval ts mem value);
      ts.work <- rest
    | Kernel.Atomic { dst; space = Kernel.Global; addr; op } ->
      let a = eval ts mem addr in
      let old = mem_get mem a in
      let nv =
        match op with
        | Kernel.Acas (e, d) -> if old = eval ts mem e then eval ts mem d else old
        | Kernel.Aexch v -> eval ts mem v
        | Kernel.Aadd v -> old + eval ts mem v
        | Kernel.Amin v -> Int.min old (eval ts mem v)
        | Kernel.Amax v -> Int.max old (eval ts mem v)
      in
      Hashtbl.replace mem a nv;
      (match dst with Some d -> Hashtbl.replace ts.regs d old | None -> ());
      ts.work <- rest
    | Kernel.Load _ | Kernel.Store _ | Kernel.Atomic _ ->
      invalid_arg "Sc_ref: shared memory is not supported"
    | Kernel.Fence _ ->
      (* Under SC a fence is a no-op. *)
      ts.work <- rest
    | Kernel.If (c, t, e) ->
      ts.work <- (if eval ts mem c <> 0 then t @ rest else e @ rest)
    | Kernel.While _ -> invalid_arg "Sc_ref: loops are not supported"
    | Kernel.Barrier ->
      ts.work <- rest;
      ts.waiting <- true;
      maybe_release tstates ts.block
    | Kernel.Return -> ts.work <- []);
    (* A thread that just finished may force a barrier-divergence check on
       its block (a release triggered by exit is undefined behaviour). *)
    if finished ts then maybe_release tstates ts.block;
    true

let snapshot_ts ts = (ts.thread, ts.work, ts.waiting, Hashtbl.copy ts.regs)
let restore_ts ts (_, work, waiting, regs) =
  ts.work <- work;
  ts.waiting <- waiting;
  Hashtbl.reset ts.regs;
  Hashtbl.iter (Hashtbl.add ts.regs) regs

let run ?blocks ~threads ~args ~init ~watch_mem ~watch_regs () =
  if List.length threads <> List.length args then
    invalid_arg "Sc_ref.run: threads/args length mismatch";
  let n = List.length threads in
  let lay = layouts ?blocks n in
  let mem = Hashtbl.create 16 in
  List.iter (fun (a, v) -> Hashtbl.replace mem a v) init;
  let tstates =
    List.mapi
      (fun i (k : Kernel.t) ->
        let l_tid, bid, l_bdim, l_gdim = lay.(i) in
        { thread = i; block = bid; l_tid; l_bdim; l_gdim;
          work = k.Kernel.body; waiting = false; regs = Hashtbl.create 8;
          args = List.nth args i })
      threads
    |> Array.of_list
  in
  let results = Hashtbl.create 64 in
  let rec explore () =
    let progressed = ref false in
    for i = 0 to n - 1 do
      let ts = tstates.(i) in
      if ts.work <> [] && not ts.waiting then begin
        progressed := true;
        let saved = Array.map snapshot_ts tstates in
        let saved_mem = Hashtbl.copy mem in
        ignore (step tstates ts mem);
        explore ();
        Array.iteri (fun j s -> restore_ts tstates.(j) s) saved;
        Hashtbl.reset mem;
        Hashtbl.iter (Hashtbl.add mem) saved_mem
      end
    done;
    if not !progressed then
      if Array.exists (fun ts -> not (finished ts)) tstates then
        (* Every unfinished thread is parked at a barrier that can never
           fill: a barrier deadlock, rejected like divergence. *)
        invalid_arg "Sc_ref: barrier divergence"
      else begin
        let memory =
          List.sort compare (List.map (fun a -> (a, mem_get mem a)) watch_mem)
        in
        let registers =
          List.sort compare
            (List.map
               (fun (t, r) ->
                 let v =
                   match Hashtbl.find_opt tstates.(t).regs r with
                   | Some v -> v
                   | None -> 0
                 in
                 (t, r, v))
               watch_regs)
        in
        Hashtbl.replace results { memory; registers } ()
      end
  in
  explore ();
  Hashtbl.fold (fun s () acc -> s :: acc) results []
  |> List.sort compare

let allows ?blocks ~threads ~args ~init target =
  let watch_mem = List.map fst target.memory in
  let watch_regs = List.map (fun (t, r, _) -> (t, r)) target.registers in
  let reachable = run ?blocks ~threads ~args ~init ~watch_mem ~watch_regs () in
  List.exists
    (fun s ->
      List.sort compare s.memory = List.sort compare target.memory
      && List.sort compare s.registers = List.sort compare target.registers)
    reachable
