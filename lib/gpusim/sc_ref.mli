(** Sequentially consistent reference executor.

    Enumerates {e every} interleaving of a small multi-threaded program
    under sequential consistency and returns the set of reachable final
    states.  This is an oracle, implemented independently of the weak
    machine ({!Memsys}/{!Sim}), used to:

    - verify that the weak behaviours of the MP/LB/SB litmus tests are
      genuinely non-SC outcomes;
    - check (in property tests) that fully fenced programs only exhibit
      SC outcomes on the weak machine.

    Threads are straight-line: loops and barriers are rejected.  Branches
    are supported.  Complexity is exponential in program size, so keep
    programs litmus-sized. *)

type state = {
  memory : (int * int) list;  (** observed (address, value), sorted *)
  registers : (int * string * int) list;
      (** observed (thread, register, value), sorted *)
}

val run :
  threads:Kernel.t list ->
  args:(string * int) list list ->
  init:(int * int) list ->
  watch_mem:int list ->
  watch_regs:(int * string) list ->
  state list
(** [run ~threads ~args ~init ~watch_mem ~watch_regs] executes every
    interleaving of the given kernels (thread [i] runs [List.nth threads i]
    with arguments [List.nth args i], as a single thread with
    [tid = 0, bid = i, bdim = 1, gdim = n]).  [init] seeds global memory.
    The result is the de-duplicated, sorted list of final states projected
    onto the watched locations and registers.

    @raise Invalid_argument on loops, barriers or shared-memory use. *)

val allows :
  threads:Kernel.t list ->
  args:(string * int) list list ->
  init:(int * int) list ->
  state ->
  bool
(** Whether a projected final state is SC-reachable.  The state's own
    locations/registers define the projection. *)
