(** Sequentially consistent reference executor.

    Enumerates {e every} interleaving of a small multi-threaded program
    under sequential consistency and returns the set of reachable final
    states.  This is an oracle, implemented independently of the weak
    machine ({!Memsys}/{!Sim}), used to:

    - verify that the weak behaviours of the MP/LB/SB litmus tests are
      genuinely non-SC outcomes;
    - check (in property tests) that fully fenced programs only exhibit
      SC outcomes on the weak machine;
    - give {!Mcheck} verdicts their SC baseline ([Proved_sc] means the
      weak machine's reachable set equals this oracle's).

    Threads are straight-line: loops are rejected.  Branches and block
    barriers are supported.  Complexity is exponential in program size,
    so keep programs litmus-sized. *)

type state = {
  memory : (int * int) list;  (** observed (address, value), sorted *)
  registers : (int * string * int) list;
      (** observed (thread, register, value), sorted *)
}

val layouts : ?blocks:int array -> int -> (int * int * int * int) array
(** [layouts ?blocks n] derives per-thread launch geometry
    [(tid, bid, bdim, gdim)] from a block-membership array ([blocks.(i)]
    is the block of thread [i]; block ids are renumbered to 0.. in order
    of first appearance, threads are numbered within their block in order
    of appearance).  Defaults to one block per thread, i.e.
    [tid = 0, bid = i, bdim = 1, gdim = n].  Shared by this oracle,
    {!Mcheck} and [Sim.run_schedule] so all three agree on what thread
    [i] observes in its special registers.

    @raise Invalid_argument if [blocks] has the wrong length. *)

val run :
  ?blocks:int array ->
  threads:Kernel.t list ->
  args:(string * int) list list ->
  init:(int * int) list ->
  watch_mem:int list ->
  watch_regs:(int * string) list ->
  unit ->
  state list
(** [run ~threads ~args ~init ~watch_mem ~watch_regs] executes every
    interleaving of the given kernels (thread [i] runs [List.nth threads i]
    with arguments [List.nth args i], with the geometry of
    {!layouts}[ ?blocks n]).  [init] seeds global memory.  The result is
    the de-duplicated, sorted list of final states projected onto the
    watched locations and registers.

    A [Barrier] parks its thread until every live thread of its block is
    parked, then releases the block.  A release with exited members, or a
    barrier that can never fill (deadlock), is {e undefined} in CUDA and
    rejected here with [Invalid_argument "Sc_ref: barrier divergence"] —
    the oracle refuses to assign outcomes to undefined programs.

    @raise Invalid_argument on loops, shared-memory use, or barrier
    divergence. *)

val allows :
  ?blocks:int array ->
  threads:Kernel.t list ->
  args:(string * int) list list ->
  init:(int * int) list ->
  state ->
  bool
(** Whether a projected final state is SC-reachable.  The state's own
    locations/registers define the projection. *)
