type cell = {
  mutable reader_set : int list;  (* distinct tids, small *)
  mutable writer_set : int list;
  mutable plain : int;
  mutable atomic : int;
}

type t = { cells : (int, cell) Hashtbl.t; subscription : int }

type finding = {
  addr : int;
  readers : int;
  writers : int;
  plain_accesses : int;
  atomic_accesses : int;
  atomic_only : bool;
}

let cell t addr =
  match Hashtbl.find_opt t.cells addr with
  | Some c -> c
  | None ->
    let c = { reader_set = []; writer_set = []; plain = 0; atomic = 0 } in
    Hashtbl.add t.cells addr c;
    c

let observe t ~tid ~addr ~write ~atomic =
  let c = cell t addr in
  if atomic then c.atomic <- c.atomic + 1 else c.plain <- c.plain + 1;
  if write then begin
    if not (List.mem tid c.writer_set) then c.writer_set <- tid :: c.writer_set
  end
  else if not (List.mem tid c.reader_set) then
    c.reader_set <- tid :: c.reader_set

let attach sim =
  let cells = Hashtbl.create 256 in
  let observer = { cells; subscription = -1 } in
  let subscription =
    Trace.subscribe (Sim.trace sim) (fun ~tick:_ ev ->
        match ev with
        | Trace.Access { tid; addr; write; atomic } ->
          observe observer ~tid ~addr ~write ~atomic
        | _ -> ())
  in
  { observer with subscription }

let detach sim t = Trace.unsubscribe (Sim.trace sim) t.subscription

let clear t = Hashtbl.reset t.cells

let findings t =
  Hashtbl.fold
    (fun addr c acc ->
      let participants =
        List.sort_uniq compare (c.reader_set @ c.writer_set)
      in
      if List.length participants >= 2 && c.writer_set <> [] then
        { addr;
          readers = List.length c.reader_set;
          writers = List.length c.writer_set;
          plain_accesses = c.plain;
          atomic_accesses = c.atomic;
          atomic_only = c.plain = 0 }
        :: acc
      else acc)
    t.cells []
  |> List.sort (fun a b ->
         compare
           (b.plain_accesses + b.atomic_accesses)
           (a.plain_accesses + a.atomic_accesses))

let data_locations t =
  List.filter_map
    (fun f -> if f.atomic_only then None else Some f.addr)
    (findings t)

let pp_findings ppf fs =
  if fs = [] then Fmt.pf ppf "no communication locations observed@."
  else
    List.iter
      (fun f ->
        Fmt.pf ppf "@%-6d %2d reader(s) %2d writer(s) %5d plain %5d atomic%s@."
          f.addr f.readers f.writers f.plain_accesses f.atomic_accesses
          (if f.atomic_only then "  [synchronisation only]" else ""))
      fs
