(** Combinators for writing kernels concisely.

    The application case studies and the stressing kernels are written with
    this eDSL.  A typical kernel:

    {[
      let open Gpusim.Kbuild in
      kernel "dot" ~params:[ "mutex"; "a"; "b"; "c"; "n" ]
        [ def "tid" (tid + (bid * bdim));
          while_ (reg "tid" < param "n")
            [ (* ... *) ];
          barrier;
        ]
    ]}

    All combinators produce unlabelled statements; {!kernel} labels the
    result. *)

open Kernel

val kernel : string -> params:string list -> block -> t
(** Build and {!Kernel.label} a kernel. *)

(** {1 Expressions} *)

val int : int -> exp
val reg : string -> exp
val param : string -> exp
val tid : exp
val bid : exp
val bdim : exp
val gdim : exp

val ( + ) : exp -> exp -> exp
val ( - ) : exp -> exp -> exp
val ( * ) : exp -> exp -> exp
val ( / ) : exp -> exp -> exp
val ( mod ) : exp -> exp -> exp
val ( = ) : exp -> exp -> exp
val ( <> ) : exp -> exp -> exp
val ( < ) : exp -> exp -> exp
val ( <= ) : exp -> exp -> exp
val ( > ) : exp -> exp -> exp
val ( >= ) : exp -> exp -> exp

(** Non-short-circuit logical and. *)
val ( && ) : exp -> exp -> exp

(** Non-short-circuit logical or. *)
val ( || ) : exp -> exp -> exp
val min_ : exp -> exp -> exp
val max_ : exp -> exp -> exp
val not_ : exp -> exp

(** {1 Statements} *)

val def : string -> exp -> stmt
(** Register assignment. *)

val load : string -> ?space:space -> exp -> stmt
(** [load r addr] is [r := space[addr]]; [space] defaults to [Global]. *)

val store : ?space:space -> exp -> exp -> stmt
(** [store addr v] is [space[addr] := v]; [space] defaults to [Global]. *)

val atomic_cas : ?dst:string -> ?space:space -> exp -> expected:exp -> desired:exp -> stmt
val atomic_exch : ?dst:string -> ?space:space -> exp -> exp -> stmt
val atomic_add : ?dst:string -> ?space:space -> exp -> exp -> stmt
val atomic_min : ?dst:string -> ?space:space -> exp -> exp -> stmt
val atomic_max : ?dst:string -> ?space:space -> exp -> exp -> stmt

(** Device-scope fence, [__threadfence]. *)
val fence : stmt

(** Block-scope fence, [__threadfence_block]. *)
val fence_block : stmt
val barrier : stmt
val return : stmt

val if_ : exp -> block -> block -> stmt
val when_ : exp -> block -> stmt
(** [when_ c b] is [if_ c b \[\]]. *)

val while_ : exp -> block -> stmt

(** {1 Idiom helpers} *)

val global_tid : string -> stmt
(** [global_tid r] defines [r := tid + bid * bdim]. *)

val lock : exp -> block
(** Spin on [atomicCAS(mutex, 0, 1)] until it returns 0 — the [lock]
    device function from the CUDA-by-Example case studies.  Returns the
    statements of the spin; splice them with [@]. *)

val unlock : exp -> stmt
(** [atomicExch(mutex, 0)] — note: deliberately fence-free, as in the
    original buggy applications. *)
