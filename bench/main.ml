(* Benchmark harness: regenerates every table and figure of the paper at a
   scaled-down budget (part 1), times the code behind each experiment
   with Bechamel, one Test.make per table/figure (part 2), and compares
   the serial and parallel execution backends on the two heaviest
   campaigns (part 3).

   Paper-scale budgets are available from the CLI, e.g.:
     gpuwmm table 2 --all-chips --full

   With `--json FILE` (or `dune exec bench/main.exe -- --json FILE`), all
   wall-clock and Bechamel timings are also written to FILE as JSON, so
   successive commits have a machine-readable perf trajectory.

   `--quick` restricts the run to the perf-critical subset (the
   tracing/observability overhead ratios, the --jobs and worker-process
   scaling sweeps, and the hot-path micro-benchmarks) at reduced
   budgets — minutes, not tens of minutes — and `--gate BASELINE.json`
   then compares the run against a committed baseline: the gate fails
   if two worker processes do not beat serial on the Table 5 campaign
   (speedup_p2, from the same sweep the run records; skipped on
   single-core machines), if a hot-path micro-benchmark regressed by
   more than the tolerance (20% by default; GPUWMM_PERF_TOLERANCE
   overrides, e.g. 0.5 for noisy CI runners), or if either
   observability overhead ratio (trace_overhead_ratio,
   hb_overhead_ratio) exceeds its absolute cap.  `--snapshot` forces
   the numbered BENCH_<n>.json snapshot that full runs drop alongside
   --json. *)

open Bechamel
open Toolkit

let seed = 42

let has_flag name = Array.exists (String.equal name) Sys.argv

let flag_value name =
  let rec go i =
    if i >= Array.length Sys.argv then None
    else if Sys.argv.(i) = name && i + 1 < Array.length Sys.argv then
      Some Sys.argv.(i + 1)
    else go (i + 1)
  in
  go 1

let quick_mode = has_flag "--quick"

(* Machine-readable timing collection for --json. *)
let recorded : (string * float) list ref = ref []

let record name seconds = recorded := (name, seconds) :: !recorded

let timed name f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  record name (Unix.gettimeofday () -. t0);
  r

(* Two chips covering both patch-size architectures keep the printing
   phase inside minutes; the CLI reproduces everything on all seven. *)
let bench_chips = [ Gpusim.Chip.titan; Gpusim.Chip.c2075 ]

let bench_budget = Core.Budget.default

let section title =
  Fmt.pr "@.==================================================================@.";
  Fmt.pr "%s@." title;
  Fmt.pr "==================================================================@."

(* ------------------------------------------------------------------ *)
(* Part 1: print the (scaled) tables and figures                        *)

let print_table1 () =
  section "Table 1 (chip inventory)";
  Core.Report.table1 Fmt.stdout

let print_fig3 () =
  section
    (Printf.sprintf
       "Figure 3 (patch finding; %d runs/point, locations at stride %d)"
       bench_budget.Core.Budget.runs_patch
       bench_budget.Core.Budget.location_stride);
  List.map
    (fun chip ->
      let r = Core.Patch_finder.run ~chip ~seed ~budget:bench_budget () in
      Core.Report.figure3 Fmt.stdout ~chip:chip.Gpusim.Chip.name r;
      (chip, r))
    bench_chips

let print_table2_3 patches =
  section "Tables 2 and 3 (tuned parameters; scaled campaign)";
  let results =
    List.map
      (fun (chip, patch) ->
        let t0 = Unix.gettimeofday () in
        let sequences =
          Core.Seq_finder.run ~chip ~seed ~budget:bench_budget
            ~patch:patch.Core.Patch_finder.chosen ()
        in
        let spreads =
          Core.Spread_finder.run ~chip ~seed ~budget:bench_budget
            ~patch:patch.Core.Patch_finder.chosen
            ~sequence:sequences.Core.Seq_finder.winner ()
        in
        let tuned =
          { Core.Stress.sequence = sequences.Core.Seq_finder.winner;
            spread = spreads.Core.Spread_finder.winner;
            regions = bench_budget.Core.Budget.max_spread }
        in
        let elapsed = Unix.gettimeofday () -. t0 in
        ( { Core.Tuning.chip = chip.Gpusim.Chip.name; patch; sequences;
            spreads; tuned; elapsed_s = elapsed },
          elapsed /. 60.0 ))
      patches
  in
  Core.Report.table2 Fmt.stdout results;
  (match results with
  | (r, _) :: _ -> Core.Report.table3 Fmt.stdout r.Core.Tuning.sequences
  | [] -> ());
  results

let print_fig4 results =
  section "Figure 4 (spread finding)";
  List.iter
    (fun ((r : Core.Tuning.result), _) ->
      Core.Report.figure4 Fmt.stdout ~chip:r.Core.Tuning.chip
        r.Core.Tuning.spreads)
    results

let print_table4 () =
  section "Table 4 (application case studies)";
  Core.Report.table4 Fmt.stdout

let campaign_runs = 25

let print_table5 () =
  section
    (Printf.sprintf "Table 5 (testing environments; %d runs per combination)"
       campaign_runs);
  let rows =
    Core.Campaign.run ~chips:bench_chips
      ~environments_for:(fun chip ->
        Core.Environment.all ~tuned:(Core.Tuning.shipped ~chip))
      ~apps:Apps.Registry.all ~runs:campaign_runs ~seed ()
  in
  Core.Report.table5 Fmt.stdout rows

let harden_config chip =
  { (Core.Harden.default_config ~chip) with stability_runs = 100 }

let print_table6 () =
  section "Table 6 (empirical fence insertion)";
  let results =
    List.concat_map
      (fun app ->
        List.map
          (fun chip ->
            Core.Harden.insert ~chip ~config:(harden_config chip) ~app ~seed ())
          bench_chips)
      Apps.Registry.fence_free
  in
  Core.Report.table6 Fmt.stdout results;
  results

let print_fig5 harden_results =
  section "Figure 5 (cost of fences)";
  let emp_for chip app =
    match
      List.find_opt
        (fun r ->
          r.Core.Harden.app = app.Apps.App.name
          && r.Core.Harden.chip = chip.Gpusim.Chip.name)
        harden_results
    with
    | Some r -> r.Core.Harden.fences
    | None -> []
  in
  let points =
    Core.Cost.run ~chips:bench_chips ~apps:Apps.Registry.fence_free ~emp_for
      ~runs:15 ~seed ()
  in
  Core.Report.figure5 Fmt.stdout points

(* ------------------------------------------------------------------ *)
(* Part 1b: tracing overhead                                            *)

(* The observability layer promises to be free when off: every emit site
   in the simulator is guarded by one cached boolean.  Measure a Table 5
   cell (the heaviest per-execution workload) untraced and with the ring
   buffer enabled, and report the ratio — regressions here mean an emit
   site started allocating outside its guard. *)
(* Same rep count under --quick: the measurement is a ratio of two
   ~50 ms loops, and halving them doubles the noise band the gate
   then has to absorb. *)
let overhead_reps = 40

(* One Table 5 cell (the heaviest per-execution workload), repeated. *)
let overhead_cell ?(traced = false) () =
  let chip = Gpusim.Chip.titan in
  let app = Option.get (Apps.Registry.by_name "cbe-dot") in
  let tuned = Core.Tuning.shipped ~chip in
  let env = Core.Environment.sys_plus ~tuned in
  for i = 0 to overhead_reps - 1 do
    let sim = Gpusim.Sim.create ~chip ~seed:(Gpusim.Rng.subseed seed i) () in
    Gpusim.Sim.set_environment sim (Core.Environment.for_app env);
    if traced then Gpusim.Trace.enable (Gpusim.Sim.trace sim);
    ignore (app.Apps.App.run sim Apps.App.Original)
  done

let tracing_overhead () =
  section "Tracing overhead: disabled vs ring buffer enabled (Table 5 cell)";
  overhead_cell ();  (* warm-up *)
  timed "trace_off_s" (fun () -> overhead_cell ());
  timed "trace_on_s" (fun () -> overhead_cell ~traced:true ());
  let toff = List.assoc "trace_off_s" !recorded in
  let ton = List.assoc "trace_on_s" !recorded in
  let ratio = if toff > 0.0 then ton /. toff else 0.0 in
  record "trace_overhead_ratio" ratio;
  Fmt.pr
    "%d executions: untraced %.3f s | traced %.3f s | enabled/disabled \
     ratio %.3fx@."
    overhead_reps toff ton ratio

(* ------------------------------------------------------------------ *)
(* Part 2: Bechamel micro-benchmarks, one per table/figure              *)

let quick = Core.Budget.quick

(* The two hot-path micro-benchmarks the perf gate watches: the litmus
   inner loop (the 7.4µs/run path behind every tuning campaign) and one
   Table 5 campaign cell (the heaviest per-execution workload). *)
let hot_path_tests =
  let chip = Gpusim.Chip.titan in
  let app = Option.get (Apps.Registry.by_name "cbe-dot") in
  let tuned = Core.Tuning.shipped ~chip in
  [ Test.make ~name:"table5_campaign_cell"
      (Staged.stage (fun () ->
           Core.Campaign.test_app ~chip
             ~env:(Core.Environment.sys_plus ~tuned)
             ~app ~runs:5 ~seed:1));
    Test.make ~name:"litmus_execution"
      (Staged.stage (fun () ->
           Litmus.Runner.run_once ~chip ~seed:1
             { Litmus.Test.idiom = Litmus.Test.MP; distance = 64 }));
    (* One full model-checker verdict on the canonical weak MP instance
       (program construction + DPOR exploration + SC baseline): the cost
       of proving one litmus cell, which the check subcommand and the
       cross-validation tests pay per case. *)
    Test.make ~name:"check_litmus"
      (Staged.stage (fun () ->
           Gpusim.Mcheck.check ~chip:Gpusim.Chip.k20 ~max_reorderings:2
             (Core.Check.litmus_program
                { Litmus.Test.idiom = Litmus.Test.MP; distance = 31 }
                ~fenced:false))) ]

let bench_tests =
  let chip = Gpusim.Chip.titan in
  let app = Option.get (Apps.Registry.by_name "cbe-dot") in
  let tuned = Core.Tuning.shipped ~chip in
  hot_path_tests
  @ [ Test.make ~name:"table1_chips"
      (Staged.stage (fun () -> Fmt.str "%t" Core.Report.table1));
    Test.make ~name:"fig3_patch_finding"
      (Staged.stage (fun () ->
           Core.Patch_finder.run ~chip ~seed:1 ~budget:quick ()));
    Test.make ~name:"table2_tuning"
      (Staged.stage (fun () -> Core.Tuning.run ~chip ~seed:1 ~budget:quick ()));
    Test.make ~name:"table3_sequences"
      (Staged.stage (fun () ->
           Core.Seq_finder.run ~chip ~seed:1 ~budget:quick ~patch:32 ()));
    Test.make ~name:"fig4_spread"
      (Staged.stage (fun () ->
           Core.Spread_finder.run ~chip ~seed:1 ~budget:quick ~patch:32
             ~sequence:tuned.Core.Stress.sequence ()));
    Test.make ~name:"table4_app_execution"
      (Staged.stage (fun () ->
           let sim = Gpusim.Sim.create ~chip ~seed:1 () in
           app.Apps.App.run sim Apps.App.Original));
    Test.make ~name:"table6_harden"
      (Staged.stage (fun () ->
           Core.Harden.insert ~chip
             ~config:
               { (Core.Harden.default_config ~chip) with
                 initial_iterations = 8; stability_runs = 16 }
             ~app ~seed:1 ()));
      Test.make ~name:"fig5_cost_point"
        (Staged.stage (fun () ->
             Core.Cost.measure ~chip ~app ~fencing:Apps.App.Conservative
               ~runs:3 ~seed:1)) ]

(* ------------------------------------------------------------------ *)
(* Part 3: --jobs scaling sweep                                         *)

(* The Table 5 campaign across --jobs 1/2/4/8 (1/2/4 under --quick).
   Every point must be bit-identical to serial — the executor guarantee —
   and each point records both its wall-clock and its speedup_j<N>
   against serial, so BENCH snapshots carry the scaling trajectory. *)

let sweep_jobs = if quick_mode then [ 1; 2; 4 ] else [ 1; 2; 4; 8 ]
let sweep_runs = if quick_mode then 8 else campaign_runs
let sweep_chips = if quick_mode then [ Gpusim.Chip.titan ] else bench_chips

let sweep_campaign ?backend ?journal () =
  Core.Campaign.run ?backend ?journal ~chips:sweep_chips
    ~environments_for:(fun chip ->
      Core.Environment.all ~tuned:(Core.Tuning.shipped ~chip))
    ~apps:Apps.Registry.all ~runs:sweep_runs ~seed ()

(* The fleet-observability layer's cost on the whole Table 5 campaign
   (the unit it actually monitors), at a denser load than any real
   deployment: a 4 Hz heartbeat emitter (vs the 1 s production
   default), the HTTP endpoint server up, and a scraper hitting
   /metrics four times a second (vs a Prometheus scraper's
   multi-second cadence).  Heartbeats and scrapes are per-interval,
   not per-job, so the workload must be seconds long — a micro-short
   loop would measure the fixed scrape cost, not the layer's drag on
   the campaign. *)
let observability_overhead () =
  section
    "Observability overhead: heartbeat emitter + HTTP endpoints vs off \
     (Table 5 campaign)";
  let campaign () = ignore (sweep_campaign ()) in
  campaign ();  (* warm-up *)
  timed "hb_off_s" campaign;
  let hb = Filename.temp_file "gpuwmm-bench" ".hb" in
  let emitter = Core.Heartbeat.start ~interval_s:0.25 ~path:hb () in
  let server =
    Core.Httpd.start ~port:0 (fun _ ->
        Core.Httpd.respond
          (Core.Telemetry.prometheus (Core.Telemetry.snapshot ())))
  in
  let port = Core.Httpd.port server in
  let scraping = Atomic.make true in
  let scrapes = Atomic.make 0 in
  let scraper =
    Domain.spawn (fun () ->
        while Atomic.get scraping do
          (try
             ignore (Core.Httpd.fetch ~port "/metrics");
             Atomic.incr scrapes
           with Unix.Unix_error _ -> ());
          Unix.sleepf 0.25
        done)
  in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set scraping false;
      Domain.join scraper;
      Core.Httpd.stop server;
      Core.Heartbeat.stop emitter;
      try Sys.remove hb with Sys_error _ -> ())
    (fun () -> timed "hb_on_s" campaign);
  let toff = List.assoc "hb_off_s" !recorded in
  let ton = List.assoc "hb_on_s" !recorded in
  let ratio = if toff > 0.0 then ton /. toff else 0.0 in
  record "hb_overhead_ratio" ratio;
  Fmt.pr
    "campaign: unmonitored %.3f s | monitored %.3f s (%d scrapes served) | \
     ratio %.3fx@."
    toff ton (Atomic.get scrapes) ratio

let jobs_sweep () =
  section "Executor scaling: Table 5 campaign across --jobs";
  let cores = Domain.recommended_domain_count () in
  Fmt.pr "machine: %d recommended domain(s); %d runs per cell on %d chip(s)@."
    cores sweep_runs
    (List.length sweep_chips);
  if cores < 2 then
    Fmt.pr
      "note: a single core cannot show parallel speedup; the sweep still \
       checks determinism@.";
  let run backend = sweep_campaign ~backend () in
  let serial = timed "table5_campaign_serial_s" (fun () -> run Core.Exec.Serial) in
  let ts = List.assoc "table5_campaign_serial_s" !recorded in
  Fmt.pr "%-12s %6.2f s@." "serial" ts;
  List.iter
    (fun n ->
      let key = Printf.sprintf "table5_campaign_j%d_s" n in
      let r = timed key (fun () -> run (Core.Exec.Parallel n)) in
      let tn = List.assoc key !recorded in
      let sp = if tn > 0.0 then ts /. tn else 0.0 in
      record (Printf.sprintf "speedup_j%d" n) sp;
      Fmt.pr "%-12s %6.2f s | speedup %.2fx | identical to serial: %b@."
        (Printf.sprintf "--jobs %d" n)
        tn sp (r = serial);
      if r <> serial then
        failwith
          (Printf.sprintf "--jobs %d: campaign results diverge from serial" n))
    sweep_jobs;
  serial

(* ------------------------------------------------------------------ *)
(* Part 3b: worker-process scaling sweep                                 *)

(* The same Table 5 campaign fanned out across worker processes — the
   backend `--jobs` now picks for campaign-scale work.  Each worker is a
   re-exec of this binary in the hidden `--procs-worker K/N` mode below;
   it writes a deterministic shard ledger, the parent unions the shard
   caches and replays them through one final (cheap) campaign pass, and
   the rows must be identical to serial.  Each point records
   [speedup_p<N>]; the perf gate reads [speedup_p2] from this very
   sweep. *)

let worker_flag = "--procs-worker"
let worker_log_flag = "--procs-log"

(* Hidden entry point: `bench --procs-worker K/N --procs-log FILE`.
   Runs the sweep campaign as shard K/N into a deterministic shard
   ledger at FILE and exits; a `--resume FILE` appended by the
   supervisor replays whatever the crashed predecessor flushed. *)
let procs_worker_main spec log =
  let sh =
    match Core.Shard.parse spec with
    | Ok sh -> sh
    | Error e ->
      prerr_endline e;
      exit 2
  in
  let cache =
    match flag_value "--resume" with
    | None -> None
    | Some path -> (
      match Core.Runlog.load path with
      | Ok l -> Some (Core.Runlog.cache_of_ledger l)
      | Error _ -> None)
  in
  let grid =
    Core.Json.Assoc
      [ ( "chips",
          Core.Json.List
            (List.map
               (fun c -> Core.Json.String c.Gpusim.Chip.name)
               sweep_chips) );
        ("runs", Core.Json.Int sweep_runs) ]
  in
  let header =
    Core.Runlog.make_header ~shard:spec ~campaign:"bench-table5" ~seed ~grid ()
  in
  let sink = Core.Runlog.create ~deterministic:true ~path:log header in
  let journal = Core.Runlog.journal ~sink ?cache ~origin:"bench worker" "" in
  Core.Shard.set_ambient (Some sh);
  ignore (sweep_campaign ~journal ());
  Core.Runlog.close sink;
  exit 0

let procs_sweep serial =
  section "Executor scaling: Table 5 campaign across worker processes";
  let ts = List.assoc "table5_campaign_serial_s" !recorded in
  List.iter
    (fun n ->
      let key = Printf.sprintf "table5_campaign_p%d_s" n in
      let r =
        timed key (fun () ->
            let paths = Core.Procs.shard_paths ~n () in
            Fun.protect
              ~finally:(fun () -> Core.Procs.cleanup paths)
              (fun () ->
                let outcomes =
                  Core.Procs.fan_out ~n ~paths
                    ~argv_of:(fun ~k ~path ->
                      [ Sys.executable_name; worker_flag;
                        Printf.sprintf "%d/%d" k n; worker_log_flag; path ]
                      @ (if quick_mode then [ "--quick" ] else []))
                    ()
                in
                List.iter
                  (fun o ->
                    match o.Core.Procs.status with
                    | Core.Procs.Failed msg ->
                      Fmt.epr
                        "worker %d/%d failed (%s); its slice re-runs in the \
                         parent@."
                        o.Core.Procs.k n msg
                    | Core.Procs.Completed | Core.Procs.Degraded -> ())
                  outcomes;
                let cache = Core.Procs.merged_cache paths in
                sweep_campaign
                  ~journal:
                    (Core.Runlog.journal ~cache ~origin:"bench workers" "")
                  ()))
      in
      let tn = List.assoc key !recorded in
      let sp = if tn > 0.0 then ts /. tn else 0.0 in
      record (Printf.sprintf "speedup_p%d" n) sp;
      Fmt.pr "%-12s %6.2f s | speedup %.2fx | identical to serial: %b@."
        (Printf.sprintf "%d proc(s)" n)
        tn sp (r = serial);
      if r <> serial then
        failwith
          (Printf.sprintf
             "%d worker process(es): campaign results diverge from serial" n))
    sweep_jobs

(* Full runs additionally cross-check the Sec. 3 tuning sweep across
   backends (wall-clock fields are excluded from the comparison). *)
let tuning_backend_check () =
  section "Executor backends: Sec. 3 tuning sweep, serial vs parallel";
  let cores = Domain.recommended_domain_count () in
  let jobs = Int.max 2 (Int.min 4 cores) in
  let run backend =
    Core.Tuning.run ~backend ~chip:Gpusim.Chip.titan ~seed ~budget:bench_budget
      ()
  in
  let rs = timed "sec3_tuning_sweep_serial_s" (fun () -> run Core.Exec.Serial) in
  let rp =
    timed
      (Printf.sprintf "sec3_tuning_sweep_parallel%d_s" jobs)
      (fun () -> run (Core.Exec.Parallel jobs))
  in
  let equal (a : Core.Tuning.result) b =
    a.Core.Tuning.patch = b.Core.Tuning.patch
    && a.Core.Tuning.sequences = b.Core.Tuning.sequences
    && a.Core.Tuning.spreads = b.Core.Tuning.spreads
    && a.Core.Tuning.tuned = b.Core.Tuning.tuned
  in
  let ts = List.assoc "sec3_tuning_sweep_serial_s" !recorded in
  let tp =
    List.assoc (Printf.sprintf "sec3_tuning_sweep_parallel%d_s" jobs) !recorded
  in
  Fmt.pr
    "serial %6.2f s | parallel (%d jobs) %6.2f s | speedup %.2fx | identical \
     results: %b@."
    ts jobs tp
    (if tp > 0.0 then ts /. tp else 0.0)
    (equal rs rp);
  if not (equal rs rp) then
    failwith "sec3_tuning_sweep: serial and parallel results diverge"

let run_bechamel ~tests () =
  section "Bechamel micro-benchmarks";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  (* The gate compares absolute times, so quick runs buy stability with a
     longer quota per test (there are only two of them). *)
  let quota = if quick_mode then 3.0 else 0.5 in
  let cfg =
    Benchmark.cfg ~limit:500 ~quota:(Time.second quota) ~stabilize:false ()
  in
  let grouped = Test.make_grouped ~name:"gpuwmm" ~fmt:"%s/%s" tests in
  let raw = Benchmark.all cfg instances grouped in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold (fun name r acc -> (name, r) :: acc) results []
    |> List.sort compare
  in
  Fmt.pr "%-32s %14s %10s@." "benchmark" "time/run" "r^2";
  List.iter
    (fun (name, r) ->
      let time_ns =
        match Analyze.OLS.estimates r with
        | Some [ t ] -> t
        | Some _ | None -> nan
      in
      if not (Float.is_nan time_ns) then
        record (name ^ "_ns") time_ns;
      let pretty =
        if Float.is_nan time_ns then "n/a"
        else if time_ns > 1e9 then Fmt.str "%.2f s" (time_ns /. 1e9)
        else if time_ns > 1e6 then Fmt.str "%.2f ms" (time_ns /. 1e6)
        else if time_ns > 1e3 then Fmt.str "%.2f us" (time_ns /. 1e3)
        else Fmt.str "%.0f ns" time_ns
      in
      let r2 =
        match Analyze.OLS.r_square r with
        | Some v -> Fmt.str "%.3f" v
        | None -> "-"
      in
      Fmt.pr "%-32s %14s %10s@." name pretty r2)
    rows

(* ------------------------------------------------------------------ *)
(* Perf gate                                                            *)

(* Timing lookup by exact name, falling back to suffix match (Bechamel
   rows are recorded under their grouped name, "gpuwmm/<test>_ns"). *)
let lookup name entries =
  match List.assoc_opt name entries with
  | Some v -> Some v
  | None ->
    List.find_map
      (fun (k, v) ->
        let lk = String.length k and ln = String.length name in
        if lk > ln && String.sub k (lk - ln) ln = name then Some v else None)
      entries

let gate_tolerance () =
  match Sys.getenv_opt "GPUWMM_PERF_TOLERANCE" with
  | None -> 0.20
  | Some s -> (
    match float_of_string_opt s with
    | Some f when f >= 0.0 -> f
    | Some _ | None ->
      Fmt.epr "ignoring malformed GPUWMM_PERF_TOLERANCE=%s@." s;
      0.20)

(* The perf gate, run against a committed baseline snapshot.  Two
   checks, both about the refactor's headline promises:

   - two worker processes must beat serial on the Table 5 campaign
     ([speedup_p2 > 1.0], read from the sweep this very run recorded —
     the gate guards the numbers the snapshot publishes, not a separate
     measurement) — skipped on single-core machines, where no backend
     can win.  The domain pool's [speedup_j2] is printed for the record
     but not gated: its shared minor collector is why the process
     backend exists (BENCH_1.json recorded speedup_j2 = 0.83 while the
     old gate, timing a separate pair of runs, still passed);
   - the hot-path micro-benchmarks must be within [1 + tolerance]
     of the baseline's absolute times.  The committed baseline was
     recorded on a modest container, so faster CI machines pass with
     margin; the tolerance exists for same-machine noise. *)
let run_gate baseline_path =
  section (Printf.sprintf "Perf gate (baseline %s)" baseline_path);
  let entries = List.rev !recorded in
  let baseline =
    let ic = open_in baseline_path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    match Core.Json.of_string s with
    | Error e -> failwith (Printf.sprintf "%s: unparseable: %s" baseline_path e)
    | Ok doc -> (
      match Core.Json.member "timings" doc with
      | Some (Core.Json.Assoc kvs) ->
        List.filter_map
          (fun (k, v) ->
            match Core.Json.to_float v with
            | Some f -> Some (k, f)
            | None -> None)
          kvs
      | Some _ | None ->
        failwith (baseline_path ^ ": no \"timings\" object"))
  in
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  (* Check 1: two worker processes beat serial, per the recorded sweep. *)
  (if Domain.recommended_domain_count () >= 2 then begin
     (match lookup "speedup_j2" entries with
     | Some sj ->
       Fmt.pr "domain pool  --jobs 2: speedup %.2fx (informational)@." sj
     | None -> ());
     match lookup "speedup_p2" entries with
     | Some sp ->
       Fmt.pr "worker procs x2      : speedup %.2fx: %s@." sp
         (if sp > 1.0 then "ok" else "NOT FASTER THAN SERIAL");
       if sp <= 1.0 then
         fail
           "2 worker processes (speedup %.2fx) do not beat serial: the \
            process backend is not paying for its fan-out"
           sp
     | None -> fail "gate needs the procs sweep; run with the sweep enabled"
   end
   else
     Fmt.pr
       "single core: skipping the processes-vs-serial check (cannot show \
        speedup on this machine)@.");
  (* Check 2: hot-path micro-benchmarks vs the committed baseline. *)
  let tol = gate_tolerance () in
  List.iter
    (fun metric ->
      match (lookup metric entries, lookup metric baseline) with
      | Some cur, Some base when base > 0.0 ->
        let ratio = cur /. base in
        Fmt.pr "%-28s %10.0f ns vs baseline %10.0f ns (%.2fx): %s@." metric
          cur base ratio
          (if ratio <= 1.0 +. tol then "ok" else "REGRESSION");
        if ratio > 1.0 +. tol then
          fail "%s regressed %.0f%% over baseline (tolerance %.0f%%)" metric
            ((ratio -. 1.0) *. 100.0)
            (tol *. 100.0)
      | Some _, _ ->
        Fmt.pr "%-28s not in baseline; skipping@." metric
      | None, _ -> fail "%s was not measured in this run" metric)
    [ "litmus_execution_ns"; "table5_campaign_cell_ns"; "check_litmus_ns" ];
  (* Check 3: the observability layers stay cheap.  Absolute caps rather
     than baseline deltas — the promise is "monitoring a campaign does
     not meaningfully slow it", not "no slower than last time".  The
     ring-buffer trace has measured ~1.26x (BENCH_2) with a noise band
     of roughly ±0.4 on a virtualised single core; the heartbeat +
     endpoint layer beats and scrapes off the hot path and measures
     ~1.1x.  The cap is set above the noise band but below the
     signature of a structural regression (an emit site allocating
     outside its guard, a scrape on the hot path — those cost 2x+). *)
  let ratio_cap = 2.0 in
  List.iter
    (fun metric ->
      match lookup metric entries with
      | Some r ->
        Fmt.pr "%-28s %.3fx (cap %.1fx): %s@." metric r ratio_cap
          (if r <= ratio_cap then "ok" else "TOO EXPENSIVE");
        if r > ratio_cap then
          fail "%s is %.2fx (cap %.1fx): observability is slowing the \
                workload it watches"
            metric r ratio_cap
      | None -> fail "%s was not measured in this run" metric)
    [ "trace_overhead_ratio"; "hb_overhead_ratio" ];
  match !failures with
  | [] -> Fmt.pr "perf gate: ok@."
  | fs ->
    List.iter (fun f -> Fmt.epr "perf gate: %s@." f) (List.rev fs);
    exit 1

(* ------------------------------------------------------------------ *)
(* Entry point                                                          *)

let json_out () = flag_value "--json"

let write_json path =
  let entries = List.rev !recorded in
  let doc =
    Core.Json.Assoc
      [ ("schema", Core.Json.Int 2);
        ("unix_time", Core.Json.Float (Unix.time ()));
        ("default_jobs", Core.Json.Int (Core.Exec.default_jobs ()));
        ( "timings",
          Core.Json.Assoc
            (List.map (fun (name, v) -> (name, Core.Json.Float v)) entries) );
        ( "telemetry",
          Core.Telemetry.snapshot_to_json (Core.Telemetry.snapshot ()) ) ]
  in
  let oc = open_out path in
  output_string oc (Core.Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Fmt.pr "wrote %s@." path

(* Perf-trajectory snapshots: alongside --json FILE, a numbered
   BENCH_<n>.json is dropped at the repository root, so successive
   commits accumulate a machine-readable perf history (the snapshot
   schema is documented in DESIGN.md). *)

let repo_root () =
  let rec up dir =
    if Sys.file_exists (Filename.concat dir "dune-project") then Some dir
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else up parent
  in
  up (Sys.getcwd ())

let git_commit () =
  try
    let ic = Unix.open_process_in "git rev-parse HEAD 2>/dev/null" in
    let line = try input_line ic with End_of_file -> "" in
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 when line <> "" -> Some line
    | _ -> None
  with _ -> None

let next_bench_index root =
  Sys.readdir root |> Array.to_list
  |> List.filter_map (fun f ->
         try Some (Scanf.sscanf f "BENCH_%d.json%!" Fun.id)
         with _ -> None)
  |> List.fold_left (fun acc n -> Int.max acc (n + 1)) 0

let write_snapshot () =
  match repo_root () with
  | None ->
    Fmt.epr "no dune-project above %s; skipping the BENCH snapshot@."
      (Sys.getcwd ())
  | Some root ->
    let path =
      Filename.concat root
        (Printf.sprintf "BENCH_%d.json" (next_bench_index root))
    in
    let entries = List.rev !recorded in
    let doc =
      Core.Json.Assoc
        [ ("schema", Core.Json.Int 1);
          ( "commit",
            match git_commit () with
            | Some c -> Core.Json.String c
            | None -> Core.Json.Null );
          ("unix_time", Core.Json.Float (Unix.time ()));
          ( "trace_overhead_ratio",
            match List.assoc_opt "trace_overhead_ratio" entries with
            | Some r -> Core.Json.Float r
            | None -> Core.Json.Null );
          ( "hb_overhead_ratio",
            match List.assoc_opt "hb_overhead_ratio" entries with
            | Some r -> Core.Json.Float r
            | None -> Core.Json.Null );
          ( "timings",
            Core.Json.Assoc
              (List.map (fun (name, v) -> (name, Core.Json.Float v)) entries)
          ) ]
    in
    let oc = open_out path in
    output_string oc (Core.Json.to_string doc);
    output_char oc '\n';
    close_out oc;
    Fmt.pr "wrote %s@." path

let () =
  (* Worker processes spawned by the procs sweep re-enter here; they
     run one shard of the sweep campaign and exit before any printing. *)
  (match (flag_value worker_flag, flag_value worker_log_flag) with
  | Some spec, Some log -> procs_worker_main spec log
  | Some _, None ->
    prerr_endline (worker_flag ^ " requires " ^ worker_log_flag ^ " FILE");
    exit 2
  | None, _ -> ());
  let t0 = Unix.gettimeofday () in
  if quick_mode then begin
    tracing_overhead ();
    observability_overhead ();
    let serial = jobs_sweep () in
    procs_sweep serial;
    run_bechamel ~tests:hot_path_tests ()
  end
  else begin
    timed "table1_s" print_table1;
    let patches = timed "fig3_s" print_fig3 in
    let tuning = timed "table2_3_s" (fun () -> print_table2_3 patches) in
    timed "fig4_s" (fun () -> print_fig4 tuning);
    timed "table4_s" print_table4;
    timed "table5_s" print_table5;
    let harden_results = timed "table6_s" print_table6 in
    timed "fig5_s" (fun () -> print_fig5 harden_results);
    tracing_overhead ();
    observability_overhead ();
    let serial = jobs_sweep () in
    procs_sweep serial;
    tuning_backend_check ();
    run_bechamel ~tests:bench_tests ()
  end;
  record "total_s" (Unix.gettimeofday () -. t0);
  Fmt.pr "@.total bench time: %.1f s@." (Unix.gettimeofday () -. t0);
  Option.iter
    (fun path ->
      write_json path;
      (* --snapshot forces a numbered BENCH_<n>.json even from --quick
         runs (full runs always drop one alongside --json). *)
      if (not quick_mode) || has_flag "--snapshot" then write_snapshot ())
    (json_out ());
  Option.iter run_gate (flag_value "--gate")
